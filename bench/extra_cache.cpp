// Beyond the paper: the adaptive lookup cache (src/cache).
//
// Per-peer label-hint caches remember the last leaf observed for a cell
// so the next point operation issues one direct probe instead of the §5
// binary search; stale hints are repaired in place at O(log Δdepth)
// extra probes.  This bench quantifies the subsystem three ways:
//  * hit rate and metered DHT-lookups per query as a function of query
//    skew (cold caches, organic warm-up through the workload itself);
//  * steady state: with every per-peer cache warm, uniform lookups over
//    D >= 1024 leaves average ~1 DHT-lookup vs the uncached ~log2(D)
//    (the same table row for the PHT baseline with the same cache);
//  * churn: splits and merges invalidate hints, which are detected as
//    staleHints and repaired without ever changing a query result.
//
// ##CACHE <key> <value> lines are collected by scripts/run_benches.sh
// into the "cache" section of BENCH_PERF.json.
#include <cinttypes>
#include <cmath>

#include "bench_util.h"
#include "common/rng.h"
#include "dht/network.h"
#include "mlight/index.h"
#include "mlight/naming.h"
#include "pht/pht_index.h"
#include "workload/datasets.h"

namespace {

using namespace mlight;

struct QueryTally {
  std::uint64_t lookups = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t staleHints = 0;
  std::size_t queries = 0;
  std::size_t ok = 0;

  void add(const index::QueryStats& stats, bool answerOk) {
    lookups += stats.cost.lookups;
    cacheHits += stats.cost.cacheHits;
    staleHints += stats.cost.staleHints;
    ++queries;
    ok += answerOk;
  }
  double avgLookups() const {
    return queries == 0 ? 0.0
                        : static_cast<double>(lookups) /
                              static_cast<double>(queries);
  }
  double hitRate() const {
    return queries == 0 ? 0.0
                        : 100.0 * static_cast<double>(cacheHits) /
                              static_cast<double>(queries);
  }
};

/// One point query against `idx`, correctness-checked: the result must
/// contain a record with exactly the queried key (every query key in
/// this bench is a live record's key).
template <typename Index>
void queryOne(Index& idx, const common::Point& key, QueryTally& tally) {
  const auto out = idx.pointQuery(key);
  bool ok = false;
  for (const auto& r : out.records) ok = ok || r.key == key;
  tally.add(out.stats, ok);
}

void printRow(const char* name, const QueryTally& t) {
  std::printf("%-26s %14.2f %10.1f%% %12" PRIu64 " %10zu/%zu\n", name,
              t.avgLookups(), t.hitRate(), t.staleHints, t.ok, t.queries);
}

void tableHeader() {
  std::printf("%-26s %14s %11s %12s %12s\n", "workload", "lookups/query",
              "hit rate", "stale hints", "queries ok");
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  const bench::WallClock wall(bench::benchName(argv[0]));
  if (args.records == 123593) args.records = 30000;

  bench::banner("Extension — adaptive lookup cache",
                "per-peer label hints: hit rate vs skew, steady-state "
                "lookups vs log2(D), stale-hint repair under churn");

  const auto data = workload::northeastDataset(args.records, 31);
  const std::size_t queryCount = args.quick ? 800 : 4000;

  // Part 1: organic warm-up — cold caches, point queries with a varying
  // fraction drawn from an 8-record hotspot.  The cache pays off exactly
  // where repetition lives: per-(peer, leaf) reuse.
  std::printf("\nSkew sweep (cold start, %zu queries, %zu-record hotspot, "
              "theta=16):\n",
              queryCount, std::size_t{8});
  tableHeader();
  for (const int hotPercent : {0, 50, 90}) {
    for (const bool cacheOn : {false, true}) {
      dht::Network net(args.peers, 1);
      core::MLightConfig cfg;
      cfg.thetaSplit = 16;
      cfg.thetaMerge = 8;
      cfg.cache.enabled = cacheOn;  // explicit: ignore MLIGHT_CACHE here
      core::MLightIndex index(net, cfg);
      index.bulkLoad(data);
      common::Rng rng(7);
      QueryTally tally;
      for (std::size_t q = 0; q < queryCount; ++q) {
        const bool hot = rng.below(100) < static_cast<std::uint64_t>(
                                              hotPercent);
        const std::size_t j =
            hot ? rng.below(8) : rng.below(data.size());
        queryOne(index, data[j].key, tally);
      }
      char name[64];
      std::snprintf(name, sizeof name, "skew %d%% cache=%s", hotPercent,
                    cacheOn ? "on" : "off");
      printRow(name, tally);
      if (cacheOn) {
        char key[64];
        std::snprintf(key, sizeof key, "skew%d_hit_rate", hotPercent);
        std::printf("##CACHE %s %.3f\n", key, tally.hitRate());
      }
    }
  }

  // Part 2: steady state.  Every peer's cache is pre-warmed with the
  // full leaf set — the state any long-running per-peer workload
  // converges to — then uniform lookups are metered.  theta=16 keeps
  // D >= 1024 leaves at full scale, so the uncached reference pays the
  // §5 binary search while a warm cache resolves in one direct probe.
  std::printf("\nSteady state, uniform keys (%zu queries):\n", queryCount);
  tableHeader();
  double coldAvg = 0.0;
  double steadyAvg = 0.0;
  double steadyHit = 0.0;
  std::size_t leafCountMl = 0;
  for (const bool cacheOn : {false, true}) {
    dht::Network net(args.peers, 1);
    core::MLightConfig cfg;
    cfg.thetaSplit = 16;
    cfg.thetaMerge = 8;
    cfg.cache.enabled = cacheOn;
    cfg.cache.perDimCapacity = 4096;  // hold the whole leaf set
    core::MLightIndex index(net, cfg);
    index.bulkLoad(data);
    leafCountMl = index.bucketCount();
    if (cacheOn) {
      std::vector<common::BitString> leaves;
      index.store().forEach(
          [&](const common::BitString&, const core::LeafBucket& b,
              dht::RingId) { leaves.push_back(b.label); });
      for (const auto peer : net.peers()) {
        auto& cache = index.hintCaches().forPeer(peer.value);
        for (const auto& leaf : leaves) {
          cache.learn(leaf, static_cast<std::uint32_t>(
                                core::edgeDepth(leaf, cfg.dims)));
        }
      }
    }
    common::Rng rng(11);
    QueryTally tally;
    for (std::size_t q = 0; q < queryCount; ++q) {
      queryOne(index, data[rng.below(data.size())].key, tally);
    }
    printRow(cacheOn ? "m-LIGHT warm cache" : "m-LIGHT no cache", tally);
    (cacheOn ? steadyAvg : coldAvg) = tally.avgLookups();
    if (cacheOn) steadyHit = tally.hitRate();
  }
  {
    // The PHT baseline gets the same cache (src/pht): a warm hint skips
    // the prefix binary search the same way.
    dht::Network net(args.peers, 1);
    pht::PhtConfig cfg;
    cfg.cache.enabled = true;
    cfg.cache.perDimCapacity = 4096;
    pht::PhtIndex index(net, cfg);
    for (const auto& r : data) index.insert(r);
    index.store().forEach([&](const common::BitString&, const pht::PhtNode& n,
                              dht::RingId) {
      if (!n.isLeaf) return;
      for (const auto peer : net.peers()) {
        index.hintCaches().forPeer(peer.value).learn(
            n.label, static_cast<std::uint32_t>(n.label.size()));
      }
    });
    common::Rng rng(11);
    QueryTally tally;
    for (std::size_t q = 0; q < queryCount; ++q) {
      queryOne(index, data[rng.below(data.size())].key, tally);
    }
    printRow("PHT warm cache", tally);
    std::printf("##CACHE pht_steady_avg_lookups %.3f\n", tally.avgLookups());
  }
  std::printf("\nD = %zu leaves; uncached reference ~log2 of the probe "
              "range, warm cache resolves in one hint probe.\n",
              leafCountMl);
  std::printf("##CACHE mlight_leaves %zu\n", leafCountMl);
  std::printf("##CACHE mlight_cold_avg_lookups %.3f\n", coldAvg);
  std::printf("##CACHE mlight_steady_avg_lookups %.3f\n", steadyAvg);
  std::printf("##CACHE mlight_steady_hit_rate %.3f\n", steadyHit);

  // Part 3: churn.  A hotspot workload warms hints, then splits (hot
  // inserts), merges (hot erases), and peer churn go after them; stale
  // hints must be detected, metered, and repaired — never answer wrong.
  std::printf("\nStale-hint repair under churn (theta=100, 32 hot keys, "
              "%zu queries per phase):\n",
              queryCount / 2);
  tableHeader();
  {
    const std::size_t phaseQueries = queryCount / 2;
    dht::Network net(args.peers, 1);
    core::MLightConfig cfg;
    cfg.thetaSplit = 100;
    cfg.thetaMerge = 50;
    cfg.cache.enabled = true;
    core::MLightIndex index(net, cfg);
    const std::size_t buildN = args.quick ? 5000 : 20000;
    for (std::size_t i = 0; i < buildN; ++i) index.insert(data[i]);
    common::Rng rng(13);
    auto hotKey = [&]() { return data[rng.below(32)].key; };

    QueryTally warm;
    for (std::size_t q = 0; q < phaseQueries; ++q) {
      queryOne(index, hotKey(), warm);
    }
    printRow("warm-up", warm);

    // Split churn: flood the hot leaves with jittered copies until they
    // split several times, turning cached hints into on-path ancestors.
    std::vector<index::Record> jittered;
    common::Rng jrng(17);
    for (std::size_t k = 0; k < 32; ++k) {
      for (std::size_t c = 0; c < 64; ++c) {
        index::Record r = data[k];
        r.id = 1000000 + k * 64 + c;
        for (std::size_t d = 0; d < r.key.dims(); ++d) {
          const double jitter =
              (static_cast<double>(jrng.below(2001)) - 1000.0) * 1e-6;
          double v = r.key[d] + jitter;
          if (v < 0.0) v = 0.0;
          if (v >= 1.0) v = 1.0 - 1e-9;
          r.key[d] = v;
        }
        jittered.push_back(std::move(r));
      }
    }
    for (const auto& r : jittered) index.insert(r);
    QueryTally afterSplit;
    for (std::size_t q = 0; q < phaseQueries; ++q) {
      queryOne(index, hotKey(), afterSplit);
    }
    printRow("after split churn", afterSplit);

    // Merge churn: drain the jittered records again so the hot leaves
    // merge back up — cached hints now probe pruned subtrees (NULL).
    for (const auto& r : jittered) index.erase(r.key, r.id);
    QueryTally afterMerge;
    for (std::size_t q = 0; q < phaseQueries; ++q) {
      queryOne(index, hotKey(), afterMerge);
    }
    printRow("after merge churn", afterMerge);
    std::printf("##CACHE churn_stale_hints %" PRIu64 "\n",
                afterSplit.staleHints + afterMerge.staleHints);
    std::printf("##CACHE churn_queries_ok %zu\n",
                warm.ok + afterSplit.ok + afterMerge.ok);

    // Peer churn bounds the store's ring-key cache: crashing a peer
    // mourns its unreplicated labels, and mourned labels are evicted.
    const std::size_t ringKeysBefore = index.store().ringKeyCacheSize();
    net.crashPeer(net.peers()[rng.below(net.peerCount())]);
    std::printf("\nring-key cache entries: %zu before crash, %zu after "
                "(%zu mourned labels evicted; %zu buckets lost)\n",
                ringKeysBefore, index.store().ringKeyCacheSize(),
                ringKeysBefore - index.store().ringKeyCacheSize(),
                index.store().lostBuckets());
    std::printf("##CACHE ringkey_cache_size %zu\n",
                index.store().ringKeyCacheSize());
  }

  std::printf("\nshape check: hit rate rises with skew and never changes "
              "an answer;\nwarm caches collapse uniform lookups to ~1 "
              "DHT-lookup (uncached: ~log2 D);\nchurn shows up as metered "
              "stale hints, each repaired in place.\n");
  return 0;
}
