// Reproduces Fig. 7 of the paper: range query performance.
//
//   Fig 7a: bandwidth (number of DHT-lookups) vs range span
//   Fig 7b: latency (rounds of DHT-lookups) vs range span
//
// Five curves, as in §7.4: m-LIGHT basic, m-LIGHT parallel-2, m-LIGHT
// parallel-4, PHT, and DST.  Queried ranges are uniformly placed squares
// whose *span* (area) sweeps 0.05..0.6; D = 28 throughout — deliberately
// larger than the real tree depth, which is what shatters DST's
// decomposition.  Expected shapes: DST an order of magnitude above the
// others in bandwidth and exploding in latency at large spans; m-LIGHT
// basic cheapest in bandwidth; parallel-2/4 trade bandwidth for latency.
#include <cinttypes>

#include "bench_util.h"
#include "dht/network.h"
#include "dst/dst_index.h"
#include "mlight/index.h"
#include "pht/pht_index.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace {

using namespace mlight;

struct CurvePoint {
  double lookups = 0.0;  // mean per query
  double rounds = 0.0;   // mean per query
  double ms = 0.0;       // mean simulated wall latency per query
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  const bench::WallClock wall(bench::benchName(argv[0]));
  const auto data = bench::experimentDataset(args, 20090401);

  bench::banner("Fig 7 — range query performance",
                "m-LIGHT (ICDCS'09) §7.4: uniformly placed square ranges, "
                "span = area, theta=100, D=28, 5 schemes");

  dht::Network net(args.peers, 1);
  core::MLightConfig mc;
  mc.thetaSplit = 100;
  mc.thetaMerge = 50;
  mc.maxEdgeDepth = 28;
  core::MLightIndex ml(net, mc);
  pht::PhtConfig pc;
  pc.thetaSplit = 100;
  pc.thetaMerge = 50;
  pc.maxDepth = 28;
  pht::PhtIndex ph(net, pc);
  dst::DstConfig dc;
  dc.maxDepth = 28;
  dc.gamma = 100;
  dst::DstIndex ds(net, dc);

  std::fprintf(stderr, "loading %zu records into 3 indexes...\n",
               data.size());
  for (const auto& r : data) {
    ml.insert(r);
    ph.insert(r);
    ds.insert(r);
  }

  const double spans[] = {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  const char* curves[] = {"mLIGHT-basic", "mLIGHT-par2", "mLIGHT-par4",
                          "PHT", "DST"};
  std::vector<std::vector<CurvePoint>> table(
      std::size(spans), std::vector<CurvePoint>(std::size(curves)));

  for (std::size_t s = 0; s < std::size(spans); ++s) {
    const auto queries = workload::uniformRangeQueries(
        args.queries, 2, spans[s], 7000 + static_cast<std::uint64_t>(s));
    std::fprintf(stderr, "span %.2f (%zu queries)...\n", spans[s],
                 queries.size());
    for (const auto& q : queries) {
      std::size_t want = 0;
      for (std::size_t curve = 0; curve < std::size(curves); ++curve) {
        index::RangeResult res;
        switch (curve) {
          case 0:
            ml.setLookahead(1);
            res = ml.rangeQuery(q);
            want = res.records.size();  // cross-check the other schemes
            break;
          case 1:
            ml.setLookahead(2);
            res = ml.rangeQuery(q);
            break;
          case 2:
            ml.setLookahead(4);
            res = ml.rangeQuery(q);
            break;
          case 3:
            res = ph.rangeQuery(q);
            break;
          case 4:
            res = ds.rangeQuery(q);
            break;
        }
        if (curve != 0 && res.records.size() != want) {
          std::fprintf(stderr, "RESULT MISMATCH on %s: %zu vs %zu\n",
                       curves[curve], res.records.size(), want);
          return 1;
        }
        table[s][curve].lookups +=
            static_cast<double>(res.stats.cost.lookups);
        table[s][curve].rounds += static_cast<double>(res.stats.rounds);
        table[s][curve].ms += res.stats.latencyMs;
      }
    }
    for (auto& point : table[s]) {
      point.lookups /= static_cast<double>(queries.size());
      point.rounds /= static_cast<double>(queries.size());
      point.ms /= static_cast<double>(queries.size());
    }
  }

  std::printf("\nFig 7a: bandwidth (# of DHT-lookups per query, mean)\n");
  std::printf("%6s", "span");
  for (const char* c : curves) std::printf(" %13s", c);
  std::printf("\n");
  for (std::size_t s = 0; s < std::size(spans); ++s) {
    std::printf("%6.2f", spans[s]);
    for (std::size_t c = 0; c < std::size(curves); ++c) {
      std::printf(" %13.1f", table[s][c].lookups);
    }
    std::printf("\n");
  }

  std::printf("\nFig 7b: latency (rounds of DHT-lookups per query, mean)\n");
  std::printf("%6s", "span");
  for (const char* c : curves) std::printf(" %13s", c);
  std::printf("\n");
  for (std::size_t s = 0; s < std::size(spans); ++s) {
    std::printf("%6.2f", spans[s]);
    for (std::size_t c = 0; c < std::size(curves); ++c) {
      std::printf(" %13.2f", table[s][c].rounds);
    }
    std::printf("\n");
  }

  std::printf(
      "\nFig 7b': simulated wall latency (ms per query, mean; 10-100 ms "
      "links,\n1 ms/message sender serialization — this is where DST's "
      "fan-out becomes latency)\n");
  std::printf("%6s", "span");
  for (const char* c : curves) std::printf(" %13s", c);
  std::printf("\n");
  for (std::size_t s = 0; s < std::size(spans); ++s) {
    std::printf("%6.2f", spans[s]);
    for (std::size_t c = 0; c < std::size(curves); ++c) {
      std::printf(" %13.1f", table[s][c].ms);
    }
    std::printf("\n");
  }
  return 0;
}
