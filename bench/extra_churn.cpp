// Beyond the paper: churn and replication economics.
//
// Over-DHT indexing inherits the overlay's churn handling (§1 of the
// paper; Bamboo's raison d'être).  This bench quantifies it for m-LIGHT:
//  * re-homing traffic as a function of churn rate (graceful leaves and
//    joins during a live insert workload);
//  * the durability/maintenance trade-off of replication under crash
//    faults: surviving buckets and total maintenance cost for R = 1..3.
#include <chrono>
#include <cinttypes>
#include <map>
#include <span>
#include <string>

#include "bench_util.h"
#include "common/rng.h"
#include "dht/network.h"
#include "index/oracle.h"
#include "mlight/index.h"
#include "workload/datasets.h"
#include "workload/queries.h"

int main(int argc, char** argv) {
  using namespace mlight;
  auto args = bench::Args::parse(argc, argv);
  const bench::WallClock wall(bench::benchName(argv[0]));
  if (args.records == 123593) args.records = 30000;

  bench::banner("Extension — churn traffic and crash durability",
                "m-LIGHT, 128 peers, theta=100; graceful churn then "
                "crash faults at replication R = 1..3");

  // Part 1: graceful churn during inserts.
  std::printf("\nGraceful churn during a %zu-record insert workload:\n",
              args.records);
  std::printf("%18s %16s %16s %14s\n", "churn events", "churn bytes",
              "churn records", "queries ok");
  for (const std::size_t churnEvery : {0u, 4000u, 1000u}) {
    dht::Network net(args.peers, 1);
    core::MLightConfig cfg;
    cfg.thetaSplit = 100;
    cfg.thetaMerge = 50;
    core::MLightIndex index(net, cfg);
    index::Oracle oracle;
    common::Rng rng(9);
    dht::CostMeter churn;
    std::size_t events = 0;
    const auto data = workload::northeastDataset(args.records, 31);
    for (std::size_t i = 0; i < data.size(); ++i) {
      index.insert(data[i]);
      oracle.insert(data[i]);
      if (churnEvery != 0 && (i + 1) % churnEvery == 0) {
        dht::MeterScope scope(net, churn);
        net.removePeer(net.peers()[rng.below(net.peerCount())]);
        net.addPeer("churn-" + std::to_string(i));
        events += 2;
      }
    }
    std::size_t correct = 0;
    for (const auto& q : workload::uniformRangeQueries(10, 2, 0.1, 41)) {
      auto got = index.rangeQuery(q).records;
      index::Oracle::sortById(got);
      correct += (got == oracle.rangeQuery(q));
    }
    std::printf("%18zu %16" PRIu64 " %16" PRIu64 " %11zu/10\n", events,
                churn.bytesMoved, churn.recordsMoved, correct);
  }

  // Part 2: crash durability vs replication factor.
  std::printf("\nCrash faults (16 sequential peer crashes, repair-on-"
              "detection) vs replication:\n");
  std::printf("%4s %16s %16s %14s %14s\n", "R", "maint lookups",
              "maint bytes", "buckets lost", "repaired");
  for (std::size_t replication = 1; replication <= 3; ++replication) {
    dht::Network net(args.peers, 1);
    core::MLightConfig cfg;
    cfg.thetaSplit = 100;
    cfg.thetaMerge = 50;
    cfg.replication = replication;
    core::MLightIndex index(net, cfg);
    common::Rng rng(13);
    dht::CostMeter maintenance;
    {
      dht::MeterScope scope(net, maintenance);
      for (const auto& r : workload::northeastDataset(args.records, 31)) {
        index.insert(r);
      }
    }
    for (int crash = 0; crash < 16; ++crash) {
      net.crashPeer(net.peers()[rng.below(net.peerCount())]);
    }
    std::printf("%4zu %16" PRIu64 " %16" PRIu64 " %14zu %14zu\n",
                replication, maintenance.lookups, maintenance.bytesMoved,
                index.store().lostBuckets(),
                index.store().repairedBuckets());
  }
  // Part 3: lossy links — RPC retry, dead letters, and replica failover
  // reads (fault injection with a fixed seed, overridable through
  // MLIGHT_FAULT_SEED; crash repair deferred to first read so the
  // failover path actually runs).
  std::printf("\nLossy network (per-attempt loss p, one crash per 1000 "
              "inserts, read-repair on failover):\n");
  std::printf("%4s %7s %10s %9s %13s %13s %15s %13s\n", "R", "loss",
              "recall", "retries", "dead letters", "failed reads",
              "failover reads", "read repairs");
  const std::size_t part3N = args.quick ? 2000 : 6000;
  std::vector<double> losses{0.0, 0.01, 0.02};
  if (args.loss >= 0.0) losses = {args.loss};
  const auto part3Data = workload::northeastDataset(part3N, 31);
  for (const std::size_t replication : {std::size_t{1}, std::size_t{2}}) {
    for (const double loss : losses) {
      dht::Network net(args.peers, 1);
      dht::FaultModel faults;
      faults.enabled = true;
      faults.lossProbability = loss;
      faults.jitterMs = 5.0;
      faults.seed = dht::faultSeedFromEnv(17);
      net.setFaultModel(faults);
      core::MLightConfig cfg;
      cfg.thetaSplit = 100;
      cfg.thetaMerge = 50;
      cfg.replication = replication;
      cfg.repair = store::RepairPolicy::kOnRead;
      core::MLightIndex index(net, cfg);
      index::Oracle oracle;
      for (std::size_t i = 0; i < part3Data.size(); ++i) {
        index.insert(part3Data[i]);
        oracle.insert(part3Data[i]);
        if ((i + 1) % 1000 == 0) {
          // Adversarial crash: kill the currently most-loaded peer, so
          // the crash is guaranteed to take bucket copies with it.
          const auto load = index.store().perPeerRecords();
          auto victim = load.begin();
          for (auto it = load.begin(); it != load.end(); ++it) {
            if (it->second > victim->second) victim = it;
          }
          if (victim != load.end()) net.crashPeer(victim->first);
        }
      }
      std::size_t expectedTotal = 0;
      std::size_t matchedTotal = 0;
      for (const auto& q : workload::uniformRangeQueries(10, 2, 0.1, 41)) {
        auto got = index.rangeQuery(q);
        index::Oracle::sortById(got.records);
        const auto want = oracle.rangeQuery(q);  // sorted by id
        expectedTotal += want.size();
        std::size_t gi = 0;
        for (const auto& w : want) {
          while (gi < got.records.size() && got.records[gi].id < w.id) ++gi;
          if (gi < got.records.size() && got.records[gi].id == w.id) {
            ++matchedTotal;
            ++gi;
          }
        }
      }
      const double recall =
          expectedTotal == 0
              ? 100.0
              : 100.0 * static_cast<double>(matchedTotal) /
                    static_cast<double>(expectedTotal);
      std::printf("%4zu %6.1f%% %9.2f%% %9" PRIu64 " %13" PRIu64
                  " %13zu %15zu %13zu\n",
                  replication, loss * 100.0, recall,
                  net.totalCost().retries, net.deadLetterCount(),
                  index.store().failedReads(),
                  index.store().failoverReads(),
                  index.store().readRepairs());
    }
  }

  // Part 4: batched writes + per-peer WAL durability.  Records go in
  // through insertBatched (one kBatchPut per destination leaf, frames
  // committed on acknowledgment); every 1000 records the most-loaded
  // peer crashes, rejoins under its old name, and replays its committed
  // frames.  Acceptance: the trailing "acked lost" column is 0 — an
  // acknowledged write never dies with its owner.  Losses that WOULD
  // have been outright data loss before the WAL now show up as
  // recovery work (restored records, recovery ms) instead.
  std::printf("\nBatched writes + WAL (batch 64, crash+rejoin+replay of "
              "the most-loaded peer per 1000 records):\n");
  std::printf("%3s %4s %7s %9s %8s %8s %9s %13s %13s %11s\n", "", "R",
              "loss", "acked", "failed", "crashes", "restored",
              "recovery ms", "recovery rec", "acked lost");
  const std::size_t part4N = args.quick ? 2000 : 6000;
  const auto part4Data = workload::northeastDataset(part4N, 31);
  std::map<std::uint64_t, const index::Record*> byId;
  for (const auto& r : part4Data) byId.emplace(r.id, &r);
  std::size_t ackedLostTotal = 0;
  double recoveryMsTotal = 0.0;
  std::size_t recoveryCount = 0;
  for (const std::size_t replication : {std::size_t{1}, std::size_t{2}}) {
    for (const double loss : losses) {
      dht::Network net(args.peers, 1);
      dht::FaultModel faults;
      faults.enabled = true;
      faults.lossProbability = loss;
      faults.jitterMs = 5.0;
      faults.seed = dht::faultSeedFromEnv(17);
      net.setFaultModel(faults);
      core::MLightConfig cfg;
      cfg.thetaSplit = 100;
      cfg.thetaMerge = 50;
      cfg.replication = replication;
      cfg.repair = store::RepairPolicy::kOnRead;
      cfg.wal = true;
      core::MLightIndex index(net, cfg);
      std::vector<std::uint64_t> acked;
      std::size_t failed = 0;
      std::size_t crashes = 0;
      std::size_t restoredBuckets = 0;
      std::size_t restoredRecords = 0;
      double recoveryMs = 0.0;
      for (std::size_t base = 0; base < part4Data.size(); base += 1000) {
        const std::size_t end = std::min(part4Data.size(), base + 1000);
        const std::span<const index::Record> slice(part4Data.data() + base,
                                                   end - base);
        const auto res = index.insertBatched(slice, 64, &acked);
        failed += res.failed;
        // Adversarial crash (as in Part 3), then the durability path:
        // rejoin under the same name, replay the committed frames.
        const auto load = index.store().perPeerRecords();
        auto victim = load.begin();
        for (auto it = load.begin(); it != load.end(); ++it) {
          if (it->second > victim->second) victim = it;
        }
        const std::string name = net.physicalNameOf(victim->first);
        if (net.crashPeer(victim->first)) {
          ++crashes;
          const dht::RingId rejoined = net.addPeer(name);
          const auto stats = index.recoverFromWal(name, rejoined);
          restoredBuckets += stats.bucketsRestored;
          restoredRecords += stats.recordsRestored;
          recoveryMs += stats.ms;
        }
      }
      // An acked write is lost iff its id no longer answers at its key.
      std::size_t ackedLost = 0;
      for (const std::uint64_t id : acked) {
        const index::Record& r = *byId.at(id);
        bool found = false;
        for (const auto& got : index.pointQuery(r.key).records) {
          found = found || got.id == id;
        }
        ackedLost += found ? 0 : 1;
      }
      std::printf("wal %4zu %6.1f%% %9zu %8zu %8zu %9zu %13.2f %13zu "
                  "%11zu\n",
                  replication, loss * 100.0, acked.size(), failed, crashes,
                  restoredBuckets, recoveryMs, restoredRecords, ackedLost);
      ackedLostTotal += ackedLost;
      recoveryMsTotal += recoveryMs;
      recoveryCount += crashes;
    }
  }

  // Amortization headline: host cost per insert, single-record path vs
  // batch 64 — same data, same config, no faults.  The batched path
  // pays one locate + one envelope per destination leaf instead of one
  // of each per record.
  const auto hostSeconds = [](auto&& body) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  double singleNs = 0.0;
  double batchNs = 0.0;
  {
    dht::Network net(args.peers, 1);
    core::MLightConfig cfg;
    cfg.thetaSplit = 100;
    cfg.thetaMerge = 50;
    cfg.wal = true;
    core::MLightIndex index(net, cfg);
    singleNs = hostSeconds([&] {
                 for (const auto& r : part4Data) index.insert(r);
               }) *
               1e9 / static_cast<double>(part4Data.size());
  }
  {
    dht::Network net(args.peers, 1);
    core::MLightConfig cfg;
    cfg.thetaSplit = 100;
    cfg.thetaMerge = 50;
    cfg.wal = true;
    core::MLightIndex index(net, cfg);
    batchNs = hostSeconds([&] { index.insertBatched(part4Data, 64); }) *
              1e9 / static_cast<double>(part4Data.size());
  }
  std::printf("\nAmortized insert cost (host, %zu records): single %.0f "
              "ns/record, batch-64 %.0f ns/record (%.2fx)\n",
              part4N, singleNs, batchNs, singleNs / batchNs);
  std::printf("##BATCH insert_single_ns_per_record %.1f\n", singleNs);
  std::printf("##BATCH insert_batch64_ns_per_record %.1f\n", batchNs);
  std::printf("##BATCH batch64_speedup_x %.2f\n", singleNs / batchNs);
  std::printf("##BATCH recovery_ms_avg %.3f\n",
              recoveryCount == 0 ? 0.0
                                 : recoveryMsTotal /
                                       static_cast<double>(recoveryCount));
  std::printf("##BATCH acked_lost_total %zu\n", ackedLostTotal);

  std::printf("\nshape check: churn traffic scales with churn rate and "
              "never breaks queries;\nR=1 loses buckets to crashes, R>=2 "
              "loses none at ~Rx the maintenance bytes;\nunder p <= 2%% "
              "loss, retries keep delivery reliable (0 dead letters) and "
              "R=2\nfailover reads hold range-query recall at 100%%;\n"
              "batched writes ack everything they applied, and WAL replay "
              "after each owner\ncrash keeps acked-lost at 0 even at "
              "R=1.\n");
  return 0;
}
