// Ablation: what does the naming function actually buy at maintenance
// time?  (DESIGN.md ablation index.)
//
// m-LIGHT stores bucket λ under f_md(λ); Theorem 5 then guarantees one
// split child keeps the old key and never crosses the network.  The
// identity-mapped alternative — a trie that stores each node under its
// own label, i.e. exactly PHT's placement over the same interleaved-bit
// geometry — must re-assign BOTH children at every split.  This bench
// isolates the split traffic of the two placements on the same workload
// and the same split threshold.
#include <cinttypes>

#include "bench_util.h"
#include "dht/network.h"
#include "mlight/index.h"
#include "pht/pht_index.h"
#include "workload/datasets.h"

int main(int argc, char** argv) {
  using namespace mlight;
  const auto args = bench::Args::parse(argc, argv);
  const bench::WallClock wall(bench::benchName(argv[0]));
  const auto data = bench::experimentDataset(args, 20090401);

  bench::banner("Ablation — naming function vs identity placement",
                "split-time traffic only; both trees use the identical "
                "kd/interleave geometry and theta=100");

  dht::Network netA(args.peers, 1);
  core::MLightConfig mc;
  mc.thetaSplit = 100;
  mc.thetaMerge = 50;
  mc.maxEdgeDepth = 28;
  core::MLightIndex ml(netA, mc);

  dht::Network netB(args.peers, 1);
  pht::PhtConfig pc;
  pc.thetaSplit = 100;
  pc.thetaMerge = 50;
  pc.maxDepth = 28;
  pht::PhtIndex identity(netB, pc);

  for (const auto& r : data) {
    ml.insert(r);
    identity.insert(r);
  }

  const auto& a = ml.maintenanceBreakdown();
  const auto& b = identity.maintenanceBreakdown();
  std::printf("\n%-34s %16s %16s\n", "", "f_md placement",
              "identity (PHT)");
  std::printf("%-34s %16" PRIu64 " %16" PRIu64 "\n",
              "buckets re-keyed at splits", a.splitBucketMoves,
              b.splitBucketMoves);
  std::printf("%-34s %16" PRIu64 " %16" PRIu64 "\n",
              "split children kept in place", a.splitStayLocal,
              b.splitStayLocal);
  std::printf("%-34s %16" PRIu64 " %16" PRIu64 "\n",
              "bucket bytes shipped at splits", a.splitShipBytes,
              b.splitShipBytes);
  std::printf("%-34s %16" PRIu64 " %16" PRIu64 "\n",
              "record bytes shipped at inserts", a.insertShipBytes,
              b.insertShipBytes);
  std::printf(
      "\nsplit traffic ratio (f_md / identity): %.2f   "
      "(Theorem 5 predicts about 0.5)\n",
      static_cast<double>(a.splitShipBytes) /
          static_cast<double>(b.splitShipBytes));
  return 0;
}
