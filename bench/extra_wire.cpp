// Measured wire throughput vs simulated prediction (the transport PR's
// driver).
//
// Brings up a loopback TCP ring — every physical peer a real
// socket-serving thread (in-process by default, or an external
// mlight_peerd process ring via --connect) — and hammers it with
// C ∈ {1, 8, 64} concurrent client threads doing batched inserts and
// range queries over u64 records.  Reports measured aggregate qps and
// client-observed p50/p99 wall latency per concurrency level, next to
// what the deterministic simulator predicts for the identical workload
// (same ring geometry, same batches, same placement — see
// tests/transport/wire_parity_test.cpp for the pinned equivalence).
//
// Every query answer is verified against the analytically known truth
// (keys are dense 0..N-1 with a fixed value mix), so the ##WIRE
// wrong_answers_total line is a hard correctness gate, not a smell test.
//
// ##WIRE <key> <value> lines feed scripts/run_benches.sh into
// BENCH_PERF.json's `wire:` section.  Host wall-clock numbers are NOT
// simulated metrics (docs/COST_MODEL.md, "Real transport").
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "store/wire_store.h"
#include "transport/ring_map.h"
#include "transport/sim_transport.h"
#include "transport/tcp.h"

namespace {

using mlight::store::WireStore;
using mlight::store::wireRingKey;
namespace dht = mlight::dht;
namespace transport = mlight::transport;

constexpr std::size_t kBatchRecords = 32;
constexpr std::size_t kClientWindow = 8;  // outstanding rpcs per client

/// Fixed record value mix: verification recomputes it instead of
/// shipping a reference copy around.
std::uint64_t valueOf(std::uint64_t key) {
  return key * 0x9E3779B97F4A7C15ull ^ 0x5DEECE66Dull;
}

std::uint64_t nowUs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double percentileMs(std::vector<double>& ms, double q) {
  if (ms.empty()) return 0.0;
  std::sort(ms.begin(), ms.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(ms.size() - 1) + 0.5);
  return ms[idx];
}

/// One owner-grouped insert batch.
struct Batch {
  std::size_t peer = 0;
  std::vector<WireStore::Record> records;
};

/// Groups the dense key space into per-owner batches of kBatchRecords,
/// identically for the simulated and the measured run.
std::vector<Batch> buildBatches(const transport::RingMap& map,
                                std::size_t records) {
  std::vector<std::vector<WireStore::Record>> acc(map.peerCount());
  std::vector<Batch> out;
  for (std::uint64_t k = 0; k < records; ++k) {
    const std::size_t p = map.ownerPeer(wireRingKey(k));
    acc[p].emplace_back(k, valueOf(k));
    if (acc[p].size() == kBatchRecords) {
      out.push_back(Batch{p, std::move(acc[p])});
      acc[p].clear();
    }
  }
  for (std::size_t p = 0; p < acc.size(); ++p) {
    if (!acc[p].empty()) out.push_back(Batch{p, std::move(acc[p])});
  }
  return out;
}

dht::RpcEnvelope makeRequest(dht::RpcKind kind,
                             std::vector<std::uint8_t> payload) {
  dht::RpcEnvelope env;
  env.kind = kind;
  env.payload = std::move(payload);
  return env;
}

struct RoundResult {
  double seconds = 0.0;
  std::vector<double> latenciesMs;
  std::uint64_t deadLetters = 0;
  std::uint64_t wrongAnswers = 0;
};

/// Insert round at concurrency C: client c owns batches with
/// index % C == c, pipelined kClientWindow deep.
RoundResult insertRound(const transport::RingMap& map,
                        const std::vector<transport::PeerAddr>& addrs,
                        const std::vector<Batch>& batches, std::size_t c) {
  std::vector<std::thread> threads;
  std::vector<RoundResult> perClient(c);
  const std::uint64_t t0 = nowUs();
  for (std::size_t ci = 0; ci < c; ++ci) {
    threads.emplace_back([&, ci] {
      transport::TcpTransport client(map, addrs);
      RoundResult& r = perClient[ci];
      for (std::size_t b = ci; b < batches.size(); b += c) {
        const Batch& batch = batches[b];
        const std::uint64_t sent = nowUs();
        client.call(
            wireRingKey(batch.records[0].first),
            makeRequest(dht::RpcKind::kBatchPut,
                        WireStore::encodeBatchPut(batch.records)),
            [&r, sent, &batch](const dht::RpcEnvelope& resp) {
              r.latenciesMs.push_back(
                  static_cast<double>(nowUs() - sent) / 1000.0);
              if (WireStore::decodeBatchPutResponse(resp.payload) !=
                  batch.records.size()) {
                ++r.wrongAnswers;
              }
            },
            nullptr);
        while (client.inFlight() >= kClientWindow) client.pump(5);
      }
      client.drain();
      r.deadLetters = client.deadLetterTotal();
    });
  }
  for (std::thread& t : threads) t.join();
  RoundResult total;
  total.seconds = static_cast<double>(nowUs() - t0) / 1e6;
  for (RoundResult& r : perClient) {
    total.latenciesMs.insert(total.latenciesMs.end(), r.latenciesMs.begin(),
                             r.latenciesMs.end());
    total.deadLetters += r.deadLetters;
    total.wrongAnswers += r.wrongAnswers;
  }
  return total;
}

/// Range-query round: each client runs its share of broadcast range
/// queries (one kVisit per peer, merged and verified analytically).
RoundResult queryRound(const transport::RingMap& map,
                       const std::vector<transport::PeerAddr>& addrs,
                       std::size_t records, std::size_t totalQueries,
                       std::size_t c) {
  std::vector<std::thread> threads;
  std::vector<RoundResult> perClient(c);
  const std::uint64_t span = std::max<std::uint64_t>(records / 50, 1);
  const std::uint64_t t0 = nowUs();
  for (std::size_t ci = 0; ci < c; ++ci) {
    threads.emplace_back([&, ci] {
      transport::TcpTransport client(map, addrs);
      RoundResult& r = perClient[ci];
      mlight::common::Rng rng(0xC0FFEEull + ci);
      for (std::size_t q = ci; q < totalQueries; q += c) {
        const std::uint64_t lo =
            rng.below(static_cast<std::uint64_t>(records) - span + 1);
        const std::uint64_t hi = lo + span - 1;
        std::uint64_t hits = 0;
        std::uint64_t bad = 0;
        const std::uint64_t sent = nowUs();
        for (std::size_t p = 0; p < map.peerCount(); ++p) {
          client.call(map.firstVnode(p),
                      makeRequest(dht::RpcKind::kVisit,
                                  WireStore::encodeRange(lo, hi)),
                      [&hits, &bad, lo, hi](const dht::RpcEnvelope& resp) {
                        for (const auto& rec :
                             WireStore::decodeRangeResponse(resp.payload)) {
                          ++hits;
                          if (rec.first < lo || rec.first > hi ||
                              rec.second != valueOf(rec.first)) {
                            ++bad;
                          }
                        }
                      },
                      nullptr);
        }
        client.drain();
        r.latenciesMs.push_back(static_cast<double>(nowUs() - sent) /
                                1000.0);
        // Keys are dense: the exact expected hit count is hi - lo + 1.
        if (hits != span || bad != 0) ++r.wrongAnswers;
      }
      r.deadLetters = client.deadLetterTotal();
    });
  }
  for (std::thread& t : threads) t.join();
  RoundResult total;
  total.seconds = static_cast<double>(nowUs() - t0) / 1e6;
  for (RoundResult& r : perClient) {
    total.latenciesMs.insert(total.latenciesMs.end(), r.latenciesMs.begin(),
                             r.latenciesMs.end());
    total.deadLetters += r.deadLetters;
    total.wrongAnswers += r.wrongAnswers;
  }
  return total;
}

/// The simulator's prediction for the identical workload: same batches,
/// same broadcast queries, measured in simulated milliseconds and
/// metered messages.  Client concurrency is a wall-clock phenomenon the
/// simulator deliberately does not model — predictions are per-op.
struct SimPrediction {
  std::vector<double> insertLatMs;
  std::vector<double> queryLatMs;
  std::uint64_t messages = 0;
  std::uint64_t deadLetters = 0;
};

SimPrediction simPredict(std::size_t peers, const std::vector<Batch>& batches,
                         std::size_t records, std::size_t totalQueries) {
  transport::SimTransport sim(peers);
  transport::RingMap map(peers);
  SimPrediction pred;
  for (const Batch& batch : batches) {
    const double t0 = sim.network().now();
    sim.call(wireRingKey(batch.records[0].first),
             makeRequest(dht::RpcKind::kBatchPut,
                         WireStore::encodeBatchPut(batch.records)),
             [&pred, t0, &sim](const dht::RpcEnvelope&) {
               pred.insertLatMs.push_back(sim.network().now() - t0);
             },
             nullptr);
    sim.drain();
  }
  const std::uint64_t span = std::max<std::uint64_t>(records / 50, 1);
  mlight::common::Rng rng(0xC0FFEEull);
  for (std::size_t q = 0; q < totalQueries; ++q) {
    const std::uint64_t lo =
        rng.below(static_cast<std::uint64_t>(records) - span + 1);
    const double t0 = sim.network().now();
    for (std::size_t p = 0; p < peers; ++p) {
      sim.call(map.firstVnode(p),
               makeRequest(dht::RpcKind::kVisit,
                           WireStore::encodeRange(lo, lo + span - 1)),
               nullptr, nullptr);
    }
    sim.drain();
    pred.queryLatMs.push_back(sim.network().now() - t0);
  }
  pred.messages = sim.network().totalCost().messages;
  pred.deadLetters = sim.network().deadLetterCount();
  return pred;
}

}  // namespace

int main(int argc, char** argv) {
  // Custom flag set (Args::parse rejects unknown flags): the standard
  // scale/quick knobs plus --connect for an external mlight_peerd ring.
  std::size_t records = 123593;
  std::size_t peers = 128;
  std::size_t queries = 24;
  bool quick = false;
  std::uint16_t connectBase = 0;  // 0 = in-process servers
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::uint64_t {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return std::strtoull(argv[++i], nullptr, 10);
    };
    if (a == "--records") {
      records = next();
    } else if (a == "--peers") {
      peers = next();
    } else if (a == "--queries") {
      queries = next();
    } else if (a == "--connect") {
      connectBase = static_cast<std::uint16_t>(next());
    } else if (a == "--quick") {
      quick = true;
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: %s [--records N] [--peers P] [--queries Q] [--quick] "
          "[--connect BASEPORT]\n"
          "  --connect: use an external mlight_peerd ring listening on\n"
          "             127.0.0.1:BASEPORT..BASEPORT+P-1 instead of\n"
          "             in-process peer threads\n",
          argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", a.c_str());
      return 2;
    }
  }
  if (quick) {
    records /= 10;
    peers = std::min<std::size_t>(peers, 64);
    queries = std::min<std::size_t>(queries, 8);
  }

  mlight::bench::WallClock wall(mlight::bench::benchName(argv[0]));
  mlight::bench::banner(
      "extra_wire — measured TCP transport vs simulated prediction",
      "transport PR: loopback ring, concurrent clients, real sockets");
  std::printf("peers=%zu records=%zu queries=%zu %s\n", peers, records,
              queries,
              connectBase != 0 ? "(external peerd ring)" : "(in-process)");

  const transport::RingMap map(peers);
  const std::vector<Batch> batches = buildBatches(map, records);

  // Simulator prediction first (cheap, deterministic).
  const SimPrediction pred = simPredict(peers, batches, records, queries);
  std::vector<double> predIns = pred.insertLatMs;
  std::vector<double> predQry = pred.queryLatMs;
  const double predInsP50 = percentileMs(predIns, 0.50);
  const double predInsP99 = percentileMs(predIns, 0.99);
  const double predQryP50 = percentileMs(predQry, 0.50);
  const double predQryP99 = percentileMs(predQry, 0.99);

  // The measured ring.
  std::vector<transport::TcpPeerServer> servers;
  std::vector<transport::PeerAddr> addrs(peers);
  if (connectBase == 0) {
    servers = std::vector<transport::TcpPeerServer>(peers);
    for (std::size_t i = 0; i < peers; ++i) {
      addrs[i].port = servers[i].start();
    }
  } else {
    for (std::size_t i = 0; i < peers; ++i) {
      addrs[i].port = static_cast<std::uint16_t>(connectBase + i);
    }
  }

  std::printf("\n%-6s %12s %10s %10s %12s %10s %10s\n", "C",
              "insert qps", "ins p50", "ins p99", "query qps", "qry p50",
              "qry p99");
  mlight::bench::rule(78);

  std::uint64_t deadTotal = 0;
  std::uint64_t wrongTotal = 0;
  for (const std::size_t c : {std::size_t{1}, std::size_t{8},
                              std::size_t{64}}) {
    RoundResult ins = insertRound(map, addrs, batches, c);
    RoundResult qry = queryRound(map, addrs, records, queries, c);
    const double insQps =
        static_cast<double>(records) / std::max(ins.seconds, 1e-9);
    const double qryQps =
        static_cast<double>(queries) / std::max(qry.seconds, 1e-9);
    const double insP50 = percentileMs(ins.latenciesMs, 0.50);
    const double insP99 = percentileMs(ins.latenciesMs, 0.99);
    const double qryP50 = percentileMs(qry.latenciesMs, 0.50);
    const double qryP99 = percentileMs(qry.latenciesMs, 0.99);
    std::printf("%-6zu %12.0f %9.2fms %9.2fms %12.1f %9.2fms %9.2fms\n", c,
                insQps, insP50, insP99, qryQps, qryP50, qryP99);
    deadTotal += ins.deadLetters + qry.deadLetters;
    wrongTotal += ins.wrongAnswers + qry.wrongAnswers;
    std::printf("##WIRE insert_qps_c%zu %.0f\n", c, insQps);
    std::printf("##WIRE insert_p50_ms_c%zu %.3f\n", c, insP50);
    std::printf("##WIRE insert_p99_ms_c%zu %.3f\n", c, insP99);
    std::printf("##WIRE query_qps_c%zu %.1f\n", c, qryQps);
    std::printf("##WIRE query_p50_ms_c%zu %.3f\n", c, qryP50);
    std::printf("##WIRE query_p99_ms_c%zu %.3f\n", c, qryP99);
  }
  std::printf(
      "\nsimulated prediction (per-op, concurrency-free): insert p50 "
      "%.2fms p99 %.2fms | query p50 %.2fms p99 %.2fms | %llu messages\n",
      predInsP50, predInsP99, predQryP50, predQryP99,
      static_cast<unsigned long long>(pred.messages));

  if (connectBase == 0) {
    for (auto& s : servers) s.stop();
  }

  std::printf("##WIRE wire_peers %zu\n", peers);
  std::printf("##WIRE wire_records %zu\n", records);
  std::printf("##WIRE sim_insert_p50_ms %.3f\n", predInsP50);
  std::printf("##WIRE sim_insert_p99_ms %.3f\n", predInsP99);
  std::printf("##WIRE sim_query_p50_ms %.3f\n", predQryP50);
  std::printf("##WIRE sim_query_p99_ms %.3f\n", predQryP99);
  std::printf("##WIRE sim_messages %llu\n",
              static_cast<unsigned long long>(pred.messages));
  std::printf("##WIRE sim_dead_letters %llu\n",
              static_cast<unsigned long long>(pred.deadLetters));
  std::printf("##WIRE dead_letters_total %llu\n",
              static_cast<unsigned long long>(deadTotal));
  std::printf("##WIRE wrong_answers_total %llu\n",
              static_cast<unsigned long long>(wrongTotal));
  return 0;
}
