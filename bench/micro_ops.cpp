// Microbenchmarks (google-benchmark) for the hot primitives underneath
// the figure harnesses: the naming function, bit interleaving, Algorithm 1
// planning, SHA-1 key hashing, overlay routing, and the host-side memory
// paths (label copies, serde round-trips, RPC envelope delivery) tracked
// by BENCH_PERF.json.
#include <benchmark/benchmark.h>

#include <span>
#include <unordered_map>

#include "common/rng.h"
#include "common/serde.h"
#include "common/sha1.h"
#include "common/zorder.h"
#include "dht/network.h"
#include "dht/rpc.h"
#include "mlight/index.h"
#include "mlight/kdspace.h"
#include "mlight/naming.h"
#include "mlight/split.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace {

using namespace mlight;

void BM_NamingFunction(benchmark::State& state) {
  const auto dims = static_cast<std::size_t>(state.range(0));
  common::Rng rng(1);
  std::vector<common::BitString> labels;
  for (int i = 0; i < 256; ++i) {
    common::BitString label = core::rootLabel(dims);
    const std::size_t depth = 1 + rng.below(28);
    for (std::size_t d = 0; d < depth; ++d) label.pushBack(rng.chance(0.5));
    labels.push_back(label);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::naming(labels[i++ % labels.size()], dims));
  }
}
BENCHMARK(BM_NamingFunction)->Arg(2)->Arg(4);

void BM_Interleave(benchmark::State& state) {
  const auto dims = static_cast<std::size_t>(state.range(0));
  common::Rng rng(2);
  common::Point p(dims);
  for (std::size_t d = 0; d < dims; ++d) p[d] = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(common::interleave(p, 28));
  }
}
BENCHMARK(BM_Interleave)->Arg(2)->Arg(4);

void BM_LabelRegion(benchmark::State& state) {
  common::Rng rng(3);
  common::BitString label = core::rootLabel(2);
  for (int d = 0; d < 24; ++d) label.pushBack(rng.chance(0.5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::labelRegion(label, 2));
  }
}
BENCHMARK(BM_LabelRegion);

void BM_Sha1Key(benchmark::State& state) {
  std::string key = "mlight/001011010111001";
  for (auto _ : state) {
    benchmark::DoNotOptimize(common::sha1(key));
  }
}
BENCHMARK(BM_Sha1Key);

void BM_DataAwarePlan(benchmark::State& state) {
  const auto records = static_cast<std::size_t>(state.range(0));
  auto data = workload::clusteredDataset(records, 2, 3, 0.05, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::planDataAwareSplit(
        core::rootLabel(2), common::Rect::unit(2), data, 70.0, 2, 28));
  }
  state.SetComplexityN(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_DataAwarePlan)->Arg(128)->Arg(512)->Arg(2048)->Complexity();

void BM_OverlayRouting(benchmark::State& state) {
  const auto peers = static_cast<std::size_t>(state.range(0));
  dht::Network net(peers, 5);
  common::Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net.lookup(net.peers()[rng.below(peers)], dht::RingId{rng.next()}));
  }
}
BENCHMARK(BM_OverlayRouting)->Arg(16)->Arg(128)->Arg(1024);

// --- Hot-path memory microbenches ------------------------------------
//
// These isolate the allocation behavior of the label and message paths:
// every figure harness funnels through BitString manipulation (naming,
// prefix binary search, branch enumeration) and RPC envelope
// serialization, so ns/op here is the host wall-clock floor of the whole
// simulation.  Bodies use only the public API so the series is
// comparable across representation changes (BENCH_PERF.json).

mlight::common::BitString randomLabel(std::size_t bits, std::uint64_t seed) {
  common::Rng rng(seed);
  common::BitString out;
  for (std::size_t i = 0; i < bits; ++i) out.pushBack(rng.chance(0.5));
  return out;
}

void BM_BitStringCopy(benchmark::State& state) {
  const auto label =
      randomLabel(static_cast<std::size_t>(state.range(0)), 21);
  for (auto _ : state) {
    common::BitString copy = label;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_BitStringCopy)->Arg(31)->Arg(120)->Arg(200);

void BM_BitStringPrefixChain(benchmark::State& state) {
  // prefix() at every length of a D=28 label — the shape of branch
  // enumeration in range forwarding and of split planning.
  common::BitString label = core::rootLabel(2);
  label.append(randomLabel(28, 22));
  for (auto _ : state) {
    for (std::size_t n = 0; n <= label.size(); ++n) {
      benchmark::DoNotOptimize(label.prefix(n));
    }
  }
}
BENCHMARK(BM_BitStringPrefixChain);

void BM_BitStringAppend(benchmark::State& state) {
  // pointPathLabel's shape: root label + D interleaved bits.
  const common::BitString tail = randomLabel(28, 23);
  for (auto _ : state) {
    common::BitString label = core::rootLabel(2);
    label.append(tail);
    benchmark::DoNotOptimize(label);
  }
}
BENCHMARK(BM_BitStringAppend);

void BM_LookupPrefixSearch(benchmark::State& state) {
  // The label arithmetic of one §5 lookup: a ⌈log₂D⌉-probe binary search
  // over candidate prefixes of the point's full path, naming each probe
  // key (store access and routing excluded).
  constexpr std::size_t m = 2;
  constexpr std::size_t D = 28;
  common::Rng rng(24);
  std::vector<common::BitString> fulls;
  for (int i = 0; i < 64; ++i) {
    const common::Point p{rng.uniform(), rng.uniform()};
    fulls.push_back(core::pointPathLabel(p, m, D));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const common::BitString& full = fulls[i++ % fulls.size()];
    std::size_t lo = 0;
    std::size_t hi = D;
    while (lo < hi) {
      const std::size_t t = lo + (hi - lo) / 2;
      const common::BitString key = core::naming(full.prefix(m + 1 + t), m);
      benchmark::DoNotOptimize(key);
      if (key.size() % 2 == 0) {
        hi = t;
      } else {
        lo = t + 1;
      }
    }
  }
}
BENCHMARK(BM_LookupPrefixSearch);

void BM_BitStringHashAndFind(benchmark::State& state) {
  // The store's per-probe hashing shape: one probe key hashed against
  // the bucket map and its sibling bookkeeping tables (the same label is
  // hashed several times per delivery).
  std::unordered_map<common::BitString, int, common::BitStringHash> entries;
  std::unordered_map<common::BitString, int, common::BitStringHash> cache;
  std::vector<common::BitString> keys;
  for (std::uint64_t s = 0; s < 256; ++s) {
    keys.push_back(randomLabel(31, 100 + s));
    entries.emplace(keys.back(), static_cast<int>(s));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const common::BitString probe = keys[i++ % keys.size()];
    benchmark::DoNotOptimize(entries.find(probe));
    benchmark::DoNotOptimize(cache.find(probe));
    benchmark::DoNotOptimize(probe.hash64());
  }
}
BENCHMARK(BM_BitStringHashAndFind);

void BM_SerdeBitStringRoundTrip(benchmark::State& state) {
  const auto label =
      randomLabel(static_cast<std::size_t>(state.range(0)), 25);
  for (auto _ : state) {
    common::Writer w;
    w.writeBitString(label);
    common::Reader r(w.bytes());
    benchmark::DoNotOptimize(r.readBitString());
  }
}
BENCHMARK(BM_SerdeBitStringRoundTrip)->Arg(31)->Arg(120);

void BM_RpcEnvelopeRoundTrip(benchmark::State& state) {
  // One envelope's serialize → wire → deserialize cycle, the per-message
  // work both the fault-free and fault paths perform.
  dht::RpcEnvelope env;
  env.id = 7;
  env.kind = dht::RpcKind::kVisit;
  env.from = dht::RingId{0x1234};
  env.to = dht::RingId{0x5678};
  env.round = 3;
  env.payload.assign(48, 0xAB);
  for (auto _ : state) {
    common::Writer w;
    env.serialize(w);
    common::Reader r(w.bytes());
    benchmark::DoNotOptimize(dht::RpcEnvelope::deserialize(r));
  }
}
BENCHMARK(BM_RpcEnvelopeRoundTrip);

void BM_RpcSendDeliver(benchmark::State& state) {
  // Full fault-free message cycle: route, serialize through the send
  // queue, scheduler delivery, handler dispatch.
  dht::Network net(64, 13);
  const auto& peers = net.peers();
  common::Rng rng(14);
  const std::vector<std::uint8_t> payload(48, 0xAB);
  for (auto _ : state) {
    dht::RpcEnvelope env;
    env.kind = dht::RpcKind::kGet;
    env.from = peers[rng.below(peers.size())];
    env.payload = payload;
    net.sendRpc(dht::RingId{rng.next()}, std::move(env),
                [](const dht::RpcDelivery&) {});
    net.run();
  }
}
BENCHMARK(BM_RpcSendDeliver);

void BM_MLightInsert(benchmark::State& state) {
  dht::Network net(128, 7);
  core::MLightConfig cfg;
  cfg.thetaSplit = 100;
  cfg.thetaMerge = 50;
  core::MLightIndex idx(net, cfg);
  auto data = workload::northeastDataset(200000, 8);
  std::size_t i = 0;
  for (auto _ : state) {
    idx.insert(data[i++ % data.size()]);
  }
}
BENCHMARK(BM_MLightInsert);

// Batched counterpart of BM_MLightInsert: one iteration consumes a
// whole 64-record batch through the kBatchPut path, so time/64 is the
// amortized per-record cost the BENCH_PERF batch: section tracks.
void BM_MLightInsertBatch(benchmark::State& state) {
  dht::Network net(128, 7);
  core::MLightConfig cfg;
  cfg.thetaSplit = 100;
  cfg.thetaMerge = 50;
  core::MLightIndex idx(net, cfg);
  auto data = workload::northeastDataset(200000, 8);
  const std::size_t kBatch = 64;
  std::size_t i = 0;
  for (auto _ : state) {
    if (i + kBatch > data.size()) i = 0;
    idx.insertBatched(
        std::span<const index::Record>(data.data() + i, kBatch), kBatch);
    i += kBatch;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_MLightInsertBatch);

void BM_MLightRangeQuery(benchmark::State& state) {
  dht::Network net(128, 9);
  core::MLightConfig cfg;
  cfg.thetaSplit = 100;
  cfg.thetaMerge = 50;
  core::MLightIndex idx(net, cfg);
  for (const auto& r : workload::northeastDataset(20000, 10)) idx.insert(r);
  const auto queries = workload::uniformRangeQueries(64, 2, 0.05, 11);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.rangeQuery(queries[i++ % queries.size()]));
  }
}
BENCHMARK(BM_MLightRangeQuery);

void BM_MLightKnnQuery(benchmark::State& state) {
  dht::Network net(128, 9);
  core::MLightConfig cfg;
  cfg.thetaSplit = 100;
  cfg.thetaMerge = 50;
  core::MLightIndex idx(net, cfg);
  for (const auto& r : workload::northeastDataset(20000, 10)) idx.insert(r);
  common::Rng rng(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        idx.knnQuery(common::Point{rng.uniform(), rng.uniform()},
                     static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_MLightKnnQuery)->Arg(1)->Arg(10)->Arg(50);

}  // namespace

BENCHMARK_MAIN();
