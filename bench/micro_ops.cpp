// Microbenchmarks (google-benchmark) for the hot primitives underneath
// the figure harnesses: the naming function, bit interleaving, Algorithm 1
// planning, SHA-1 key hashing, and overlay routing.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/sha1.h"
#include "common/zorder.h"
#include "dht/network.h"
#include "mlight/index.h"
#include "mlight/kdspace.h"
#include "mlight/naming.h"
#include "mlight/split.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace {

using namespace mlight;

void BM_NamingFunction(benchmark::State& state) {
  const auto dims = static_cast<std::size_t>(state.range(0));
  common::Rng rng(1);
  std::vector<common::BitString> labels;
  for (int i = 0; i < 256; ++i) {
    common::BitString label = core::rootLabel(dims);
    const std::size_t depth = 1 + rng.below(28);
    for (std::size_t d = 0; d < depth; ++d) label.pushBack(rng.chance(0.5));
    labels.push_back(label);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::naming(labels[i++ % labels.size()], dims));
  }
}
BENCHMARK(BM_NamingFunction)->Arg(2)->Arg(4);

void BM_Interleave(benchmark::State& state) {
  const auto dims = static_cast<std::size_t>(state.range(0));
  common::Rng rng(2);
  common::Point p(dims);
  for (std::size_t d = 0; d < dims; ++d) p[d] = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(common::interleave(p, 28));
  }
}
BENCHMARK(BM_Interleave)->Arg(2)->Arg(4);

void BM_LabelRegion(benchmark::State& state) {
  common::Rng rng(3);
  common::BitString label = core::rootLabel(2);
  for (int d = 0; d < 24; ++d) label.pushBack(rng.chance(0.5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::labelRegion(label, 2));
  }
}
BENCHMARK(BM_LabelRegion);

void BM_Sha1Key(benchmark::State& state) {
  std::string key = "mlight/001011010111001";
  for (auto _ : state) {
    benchmark::DoNotOptimize(common::sha1(key));
  }
}
BENCHMARK(BM_Sha1Key);

void BM_DataAwarePlan(benchmark::State& state) {
  const auto records = static_cast<std::size_t>(state.range(0));
  auto data = workload::clusteredDataset(records, 2, 3, 0.05, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::planDataAwareSplit(
        core::rootLabel(2), common::Rect::unit(2), data, 70.0, 2, 28));
  }
  state.SetComplexityN(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_DataAwarePlan)->Arg(128)->Arg(512)->Arg(2048)->Complexity();

void BM_OverlayRouting(benchmark::State& state) {
  const auto peers = static_cast<std::size_t>(state.range(0));
  dht::Network net(peers, 5);
  common::Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net.lookup(net.peers()[rng.below(peers)], dht::RingId{rng.next()}));
  }
}
BENCHMARK(BM_OverlayRouting)->Arg(16)->Arg(128)->Arg(1024);

void BM_MLightInsert(benchmark::State& state) {
  dht::Network net(128, 7);
  core::MLightConfig cfg;
  cfg.thetaSplit = 100;
  cfg.thetaMerge = 50;
  core::MLightIndex idx(net, cfg);
  auto data = workload::northeastDataset(200000, 8);
  std::size_t i = 0;
  for (auto _ : state) {
    idx.insert(data[i++ % data.size()]);
  }
}
BENCHMARK(BM_MLightInsert);

void BM_MLightRangeQuery(benchmark::State& state) {
  dht::Network net(128, 9);
  core::MLightConfig cfg;
  cfg.thetaSplit = 100;
  cfg.thetaMerge = 50;
  core::MLightIndex idx(net, cfg);
  for (const auto& r : workload::northeastDataset(20000, 10)) idx.insert(r);
  const auto queries = workload::uniformRangeQueries(64, 2, 0.05, 11);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.rangeQuery(queries[i++ % queries.size()]));
  }
}
BENCHMARK(BM_MLightRangeQuery);

void BM_MLightKnnQuery(benchmark::State& state) {
  dht::Network net(128, 9);
  core::MLightConfig cfg;
  cfg.thetaSplit = 100;
  cfg.thetaMerge = 50;
  core::MLightIndex idx(net, cfg);
  for (const auto& r : workload::northeastDataset(20000, 10)) idx.insert(r);
  common::Rng rng(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        idx.knnQuery(common::Point{rng.uniform(), rng.uniform()},
                     static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_MLightKnnQuery)->Arg(1)->Arg(10)->Arg(50);

}  // namespace

BENCHMARK_MAIN();
