// Reproduces Fig. 6 of the paper: storage load balance of the data-aware
// splitting strategy vs the conventional threshold-based strategy.
//
//   Fig 6a: variance of per-peer storage load vs tree size
//   Fig 6b: percentage of empty buckets vs tree size
//
// Setup mirrors §7.3: ε = 70 and θ_split = 100 so both trees grow to
// comparable sizes over the NE dataset.  Expected shapes: the data-aware
// strategy lowers load variance (paper: ≈15%) and empty-bucket share
// (paper: ≈35%).  Variance is reported on loads normalized by their mean
// (the dimensionless relative variance), so the number is comparable
// across checkpoints with different totals.
#include <algorithm>
#include <cinttypes>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "dht/network.h"
#include "mlight/index.h"
#include "workload/datasets.h"

namespace {

using namespace mlight;

struct Sample {
  std::size_t treeSize = 0;
  double loadVariance = 0.0;    // per physical peer
  double bucketVariance = 0.0;  // per bucket
  double emptyPct = 0.0;
  double queryMax = 0.0;  // max per-peer envelope delta over the probe set
  double queryAvg = 0.0;  // avg per-peer envelope delta over the probe set
};

/// Relative (mean-normalized) variance of storage per *physical* peer.
/// The overlay runs 8 virtual nodes per peer, as real Chord/Bamboo
/// deployments do, so arc imbalance does not drown the strategy effect.
double relativePeerVariance(const core::MLightIndex& index,
                            const dht::Network& net) {
  const auto perVnode = index.store().perPeerRecords();
  std::vector<double> load(net.physicalCount(), 0.0);
  for (const auto& [vnode, records] : perVnode) {
    load[net.physicalOf(vnode)] += static_cast<double>(records);
  }
  common::RunningStat stat;
  for (double l : load) stat.add(l);
  const double mean = stat.mean();
  return mean == 0.0 ? 0.0 : stat.variance() / (mean * mean);
}

/// Relative variance of per-bucket load — the quantity Theorem 6's
/// objective Σ(l-ε)² directly controls.
double relativeBucketVariance(const core::MLightIndex& index) {
  common::RunningStat stat;
  index.store().forEach(
      [&](const auto&, const core::LeafBucket& b, auto) {
        stat.add(static_cast<double>(b.records.size()));
      });
  const double mean = stat.mean();
  return mean == 0.0 ? 0.0 : stat.variance() / (mean * mean);
}

/// Per-physical-peer *query* load at a checkpoint: run a fixed set of
/// uniform point queries over the records inserted so far and report the
/// max/avg envelope delta per peer (dht::PeerLoadMeter) — the query-side
/// companion to the storage columns.
void queryLoadProbe(core::MLightIndex& index, const dht::Network& net,
                    const std::vector<index::Record>& data,
                    std::size_t inserted, Sample* s) {
  const std::size_t probes = 100;
  const std::vector<std::uint64_t> before = net.peerLoads().counts();
  common::Rng rng(2009 + inserted);
  for (std::size_t q = 0; q < probes; ++q) {
    index.pointQuery(data[rng.below(inserted)].key);
  }
  const std::vector<std::uint64_t>& after = net.peerLoads().counts();
  double total = 0.0;
  for (std::size_t p = 0; p < net.physicalCount(); ++p) {
    const std::uint64_t a = p < after.size() ? after[p] : 0;
    const std::uint64_t b = p < before.size() ? before[p] : 0;
    const double d = static_cast<double>(a - b);
    total += d;
    s->queryMax = std::max(s->queryMax, d);
  }
  s->queryAvg = total / static_cast<double>(net.physicalCount());
}

std::vector<Sample> run(core::SplitStrategy strategy,
                        const std::vector<index::Record>& data,
                        std::size_t peers, std::size_t checkpointEvery) {
  dht::Network net(peers, 1, /*vnodesPerPeer=*/8);
  core::MLightConfig cfg;
  cfg.strategy = strategy;
  cfg.thetaSplit = 100;
  cfg.thetaMerge = 50;
  cfg.epsilon = 70.0;
  cfg.maxEdgeDepth = 28;
  core::MLightIndex index(net, cfg);
  std::vector<Sample> samples;
  for (std::size_t i = 0; i < data.size(); ++i) {
    index.insert(data[i]);
    if ((i + 1) % checkpointEvery == 0 || i + 1 == data.size()) {
      Sample s;
      s.treeSize = index.bucketCount();
      s.loadVariance = relativePeerVariance(index, net);
      s.bucketVariance = relativeBucketVariance(index);
      s.emptyPct = 100.0 * static_cast<double>(index.emptyBucketCount()) /
                   static_cast<double>(index.bucketCount());
      queryLoadProbe(index, net, data, i + 1, &s);
      samples.push_back(s);
    }
  }
  return samples;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  const bench::WallClock wall(bench::benchName(argv[0]));
  const auto data = bench::experimentDataset(args, 20090401);
  const std::size_t checkpointEvery = data.size() / 10;

  bench::banner("Fig 6 — storage load balance",
                "m-LIGHT (ICDCS'09) §7.3: threshold (theta=100) vs "
                "data-aware (epsilon=70) splitting on the NE dataset");

  const auto threshold =
      run(core::SplitStrategy::kThreshold, data, args.peers, checkpointEvery);
  const auto aware =
      run(core::SplitStrategy::kDataAware, data, args.peers, checkpointEvery);

  std::printf("\n%52s | %52s\n", "threshold-based splitting",
              "data-aware splitting");
  std::printf("%10s %9s %9s %7s %6s %6s | %10s %9s %9s %7s %6s %6s\n",
              "tree size", "peer var", "bkt var", "empty%", "qmax", "qavg",
              "tree size", "peer var", "bkt var", "empty%", "qmax", "qavg");
  for (std::size_t i = 0; i < threshold.size() && i < aware.size(); ++i) {
    std::printf("%10zu %9.4f %9.4f %6.2f%% %6.0f %6.1f | %10zu %9.4f %9.4f "
                "%6.2f%% %6.0f %6.1f\n",
                threshold[i].treeSize, threshold[i].loadVariance,
                threshold[i].bucketVariance, threshold[i].emptyPct,
                threshold[i].queryMax, threshold[i].queryAvg,
                aware[i].treeSize, aware[i].loadVariance,
                aware[i].bucketVariance, aware[i].emptyPct,
                aware[i].queryMax, aware[i].queryAvg);
  }

  const auto& t = threshold.back();
  const auto& a = aware.back();
  std::printf("\nheadline (paper: variance -15%%, empty buckets -35%%):\n");
  std::printf("  peer-load variance reduction:    %+.1f%%\n",
              100.0 * (a.loadVariance - t.loadVariance) / t.loadVariance);
  std::printf("  bucket-load variance reduction:  %+.1f%%\n",
              100.0 * (a.bucketVariance - t.bucketVariance) /
                  t.bucketVariance);
  if (t.emptyPct > 0.0) {
    std::printf("  empty-bucket reduction:          %+.1f%%\n",
                100.0 * (a.emptyPct - t.emptyPct) / t.emptyPct);
  }
  return 0;
}
