// Ablation: binary-search lookup vs linear probing, sweeping the maximum
// tree depth D.  (DESIGN.md ablation index; paper §5.)
//
// m-LIGHT's lookup binary-searches the D+1 candidate prefixes, and each
// NULL probe can cut the search interval far below the midpoint (the
// probed name is an ancestor of the candidate).  The linear strategy
// probes candidates top-down.  PHT's binary search over the same D is
// included: its probes learn only about the probed length, so it needs
// more of them — the source of m-LIGHT's Fig 5a advantage.
#include <cinttypes>

#include "bench_util.h"
#include "common/rng.h"
#include "dht/network.h"
#include "mlight/index.h"
#include "pht/pht_index.h"
#include "workload/datasets.h"

int main(int argc, char** argv) {
  using namespace mlight;
  auto args = bench::Args::parse(argc, argv);
  const bench::WallClock wall(bench::benchName(argv[0]));
  if (args.records == 123593) args.records = 40000;  // depth sweep x4 runs
  const auto data = workload::northeastDataset(args.records, 20090401);

  bench::banner("Ablation — lookup strategies vs maximum depth D",
                "mean DHT-lookups per m-LIGHT lookup; theta=100");

  std::printf("\n%6s %20s %20s %20s\n", "D", "m-LIGHT binary", "m-LIGHT linear",
              "PHT binary");
  for (const std::size_t depth : {12u, 20u, 28u, 40u}) {
    dht::Network net(args.peers, 1);
    core::MLightConfig mc;
    mc.thetaSplit = 100;
    mc.thetaMerge = 50;
    mc.maxEdgeDepth = depth;
    core::MLightIndex ml(net, mc);
    pht::PhtConfig pc;
    pc.thetaSplit = 100;
    pc.thetaMerge = 50;
    pc.maxDepth = depth;
    pht::PhtIndex ph(net, pc);
    for (const auto& r : data) {
      ml.insert(r);
      ph.insert(r);
    }
    common::Rng rng(5);
    double binary = 0;
    double linear = 0;
    double phtBinary = 0;
    const std::size_t kLookups = 2000;
    for (std::size_t i = 0; i < kLookups; ++i) {
      const auto& probe = data[rng.below(data.size())].key;
      binary += static_cast<double>(ml.lookup(probe).stats.cost.lookups);
      linear +=
          static_cast<double>(ml.lookupLinear(probe).stats.cost.lookups);
      phtBinary +=
          static_cast<double>(ph.pointQuery(probe).stats.cost.lookups);
    }
    std::printf("%6zu %20.2f %20.2f %20.2f\n", depth,
                binary / kLookups, linear / kLookups, phtBinary / kLookups);
  }
  std::printf(
      "\nshape check: m-LIGHT binary grows ~log2(D) but stays below PHT "
      "binary;\nlinear grows with the real tree depth, not with D.\n");
  return 0;
}
