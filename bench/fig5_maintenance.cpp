// Reproduces Fig. 5 of the paper: index maintenance costs.
//
//   Fig 5a: cumulative DHT-lookup cost vs data size      (m-LIGHT/PHT/DST)
//   Fig 5b: cumulative data-movement cost vs data size   (m-LIGHT/PHT/DST)
//   Fig 5c: DHT-lookup cost vs θ_split                   (full dataset)
//   Fig 5d: data-movement cost vs θ_split                (full dataset)
//
// Setup mirrors §7.1–7.2: a >100-peer DHT, the NE dataset (123,593 2-D
// points; synthetic stand-in, see DESIGN.md) inserted progressively,
// θ_split = 100 by default, D = 28.  Expected shapes: costs linear in
// data size, insensitive to θ_split (except DST's data movement, which
// shrinks for small θ as nodes saturate earlier), DST about an order of
// magnitude above the others, m-LIGHT cheapest (≈40% below PHT).
#include <cinttypes>
#include <memory>

#include "bench_util.h"
#include "dht/network.h"
#include "dst/dst_index.h"
#include "mlight/index.h"
#include "pht/pht_index.h"
#include "workload/datasets.h"

namespace {

using namespace mlight;

struct SchemeRun {
  const char* name;
  std::vector<dht::CostMeter> checkpoints;  // cumulative cost per step
};

constexpr std::size_t kMaxDepth = 28;

std::unique_ptr<index::IndexBase> makeIndex(const char* scheme,
                                            dht::Network& net,
                                            std::size_t theta) {
  if (std::strcmp(scheme, "m-LIGHT") == 0) {
    core::MLightConfig cfg;
    cfg.thetaSplit = theta;
    cfg.thetaMerge = theta / 2;
    cfg.maxEdgeDepth = kMaxDepth;
    return std::make_unique<core::MLightIndex>(net, cfg);
  }
  if (std::strcmp(scheme, "PHT") == 0) {
    pht::PhtConfig cfg;
    cfg.thetaSplit = theta;
    cfg.thetaMerge = theta / 2;
    cfg.maxDepth = kMaxDepth;
    return std::make_unique<pht::PhtIndex>(net, cfg);
  }
  dst::DstConfig cfg;
  cfg.maxDepth = kMaxDepth;
  cfg.gamma = theta;  // the paper couples DST's node capacity to θ_split
  return std::make_unique<dst::DstIndex>(net, cfg);
}

/// Inserts `data` into a fresh index, metering cumulative cost at
/// `steps` evenly spaced checkpoints.
SchemeRun runScheme(const char* scheme, const std::vector<index::Record>& data,
                    std::size_t peers, std::size_t theta, std::size_t steps) {
  dht::Network net(peers, 1);
  auto index = makeIndex(scheme, net, theta);
  SchemeRun run{scheme, {}};
  dht::CostMeter total;
  dht::MeterScope scope(net, total);
  const std::size_t stride = data.size() / steps;
  for (std::size_t i = 0; i < data.size(); ++i) {
    index->insert(data[i]);
    if ((i + 1) % stride == 0 || i + 1 == data.size()) {
      run.checkpoints.push_back(total);
    }
  }
  return run;
}

void printSeries(const char* title, const char* unit,
                 const std::vector<std::size_t>& sizes,
                 const std::vector<SchemeRun>& runs, bool bytes) {
  std::printf("\n%s (%s)\n", title, unit);
  std::printf("%12s", "data size");
  for (const auto& run : runs) std::printf(" %14s", run.name);
  std::printf("\n");
  for (std::size_t c = 0; c < sizes.size(); ++c) {
    std::printf("%12zu", sizes[c]);
    for (const auto& run : runs) {
      const auto& m = run.checkpoints[c];
      std::printf(" %14" PRIu64, bytes ? m.bytesMoved : m.lookups);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  const bench::WallClock wall(bench::benchName(argv[0]));
  const auto data = bench::experimentDataset(args, 20090401);

  bench::banner("Fig 5a/5b — maintenance cost vs data size",
                "m-LIGHT (ICDCS'09) §7.2, progressive insertion, "
                "theta_split=100, D=28");

  constexpr std::size_t kSteps = 8;
  std::vector<SchemeRun> runs;
  for (const char* scheme : {"m-LIGHT", "PHT", "DST"}) {
    runs.push_back(runScheme(scheme, data, args.peers, 100, kSteps));
  }
  std::vector<std::size_t> sizes;
  const std::size_t stride = data.size() / kSteps;
  for (std::size_t s = 1; s <= kSteps; ++s) {
    sizes.push_back(s == kSteps ? data.size() : s * stride);
  }
  printSeries("Fig 5a: DHT-lookup cost", "# of DHT-lookups, cumulative",
              sizes, runs, false);
  printSeries("Fig 5b: data-movement cost", "bytes moved, cumulative",
              sizes, runs, true);

  const auto& ml = runs[0].checkpoints.back();
  const auto& ph = runs[1].checkpoints.back();
  const auto& ds = runs[2].checkpoints.back();
  std::printf("\nheadline ratios at %zu records:\n", data.size());
  std::printf("  lookups:  m-LIGHT/PHT = %.2f   DST/PHT = %.2f\n",
              double(ml.lookups) / double(ph.lookups),
              double(ds.lookups) / double(ph.lookups));
  std::printf("  movement: m-LIGHT/PHT = %.2f   DST/PHT = %.2f\n",
              double(ml.bytesMoved) / double(ph.bytesMoved),
              double(ds.bytesMoved) / double(ph.bytesMoved));

  bench::banner("Fig 5c/5d — maintenance cost vs theta_split",
                "full dataset per point; DST's gamma follows theta");
  const std::size_t thetas[] = {50, 100, 300, 600, 900};
  std::printf("\n%12s %14s %14s %14s   (Fig 5c: DHT-lookups)\n",
              "theta_split", "m-LIGHT", "PHT", "DST");
  std::vector<std::vector<dht::CostMeter>> byTheta;
  for (const std::size_t theta : thetas) {
    std::vector<dht::CostMeter> row;
    for (const char* scheme : {"m-LIGHT", "PHT", "DST"}) {
      row.push_back(
          runScheme(scheme, data, args.peers, theta, 1).checkpoints.back());
    }
    byTheta.push_back(row);
    std::printf("%12zu %14" PRIu64 " %14" PRIu64 " %14" PRIu64 "\n", theta,
                row[0].lookups, row[1].lookups, row[2].lookups);
  }
  std::printf("\n%12s %14s %14s %14s   (Fig 5d: bytes moved)\n",
              "theta_split", "m-LIGHT", "PHT", "DST");
  for (std::size_t t = 0; t < std::size(thetas); ++t) {
    std::printf("%12zu %14" PRIu64 " %14" PRIu64 " %14" PRIu64 "\n",
                thetas[t], byTheta[t][0].bytesMoved, byTheta[t][1].bytesMoved,
                byTheta[t][2].bytesMoved);
  }
  return 0;
}
